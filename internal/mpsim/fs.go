package mpsim

import (
	"fmt"
	"os"
	"sort"
	"sync"

	"parms/internal/fault"
	"parms/internal/obs"
	"parms/internal/vtime"
)

// FS models the cluster's shared parallel filesystem. Files are byte
// arrays addressable at arbitrary offsets, so many ranks can write
// disjoint regions of the same file concurrently, as with MPI-IO file
// views. Contents can be imported from and exported to the host
// filesystem.
type FS struct {
	mu     sync.Mutex
	files  map[string]*file
	faults *fault.Plan // nil = reliable storage
}

type file struct {
	mu   sync.Mutex
	data []byte
}

// NewFS creates an empty filesystem.
func NewFS() *FS {
	return &FS{files: make(map[string]*file)}
}

func (fs *FS) open(name string, create bool) (*file, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[name]
	if !ok {
		if !create {
			return nil, fmt.Errorf("mpsim: file %q does not exist", name)
		}
		f = &file{}
		fs.files[name] = f
	}
	return f, nil
}

// Create makes (or truncates) a file.
func (fs *FS) Create(name string) {
	f, _ := fs.open(name, true)
	f.mu.Lock()
	f.data = f.data[:0]
	f.mu.Unlock()
}

// WriteAt stores data at the given offset, growing the file as needed.
// A fault plan may make it fail transiently (retryable) or permanently.
func (fs *FS) WriteAt(name string, off int64, data []byte) error {
	if err := fs.faults.OnFS(fault.FSWrite, name); err != nil {
		return err
	}
	f, err := fs.open(name, true)
	if err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	end := off + int64(len(data))
	if int64(len(f.data)) < end {
		grown := make([]byte, end)
		copy(grown, f.data)
		f.data = grown
	}
	copy(f.data[off:end], data)
	return nil
}

// ReadAt returns n bytes starting at off. A fault plan may make it fail
// transiently (retryable) or permanently.
func (fs *FS) ReadAt(name string, off int64, n int) ([]byte, error) {
	if err := fs.faults.OnFS(fault.FSRead, name); err != nil {
		return nil, err
	}
	f, err := fs.open(name, false)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if off < 0 || off+int64(n) > int64(len(f.data)) {
		return nil, fmt.Errorf("mpsim: read [%d,%d) out of bounds of %q (len %d)", off, off+int64(n), name, len(f.data))
	}
	out := make([]byte, n)
	copy(out, f.data[off:])
	// A fault plan may hand back a bit-flipped copy without mutating the
	// stored bytes; checksummed readers detect and reject the damage.
	return fs.faults.OnFSRead(name, out), nil
}

// Size returns the current length of a file.
func (fs *FS) Size(name string) (int64, error) {
	f, err := fs.open(name, false)
	if err != nil {
		return 0, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return int64(len(f.data)), nil
}

// Put stores a whole file.
func (fs *FS) Put(name string, data []byte) {
	f, _ := fs.open(name, true)
	f.mu.Lock()
	f.data = append(f.data[:0], data...)
	f.mu.Unlock()
}

// Get returns a copy of a whole file.
func (fs *FS) Get(name string) ([]byte, error) {
	f, err := fs.open(name, false)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]byte, len(f.data))
	copy(out, f.data)
	return out, nil
}

// Remove deletes a file, returning its size and whether it existed.
// Removal is a metadata operation and never fails under a fault plan:
// checkpoint GC must be able to reclaim space even on a flaky
// filesystem (a failed unlink would just be retried by the next GC
// pass anyway).
func (fs *FS) Remove(name string) (int64, bool) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[name]
	if !ok {
		return 0, false
	}
	f.mu.Lock()
	n := int64(len(f.data))
	f.mu.Unlock()
	delete(fs.files, name)
	return n, true
}

// Names lists the files present, sorted.
func (fs *FS) Names() []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	names := make([]string, 0, len(fs.files))
	for n := range fs.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Import loads a host file into the virtual filesystem under the same
// name.
func (fs *FS) Import(hostPath, name string) error {
	data, err := os.ReadFile(hostPath)
	if err != nil {
		return err
	}
	fs.Put(name, data)
	return nil
}

// Export writes a virtual file out to the host filesystem.
func (fs *FS) Export(name, hostPath string) error {
	data, err := fs.Get(name)
	if err != nil {
		return err
	}
	return os.WriteFile(hostPath, data, 0o644)
}

// Transient-error retry policy for rank-side I/O: up to ioRetryLimit
// retries with exponential virtual backoff starting at ioRetryBackoff
// seconds, the standard posture against a flaky parallel filesystem.
// Permanent errors surface immediately.
const (
	ioRetryLimit   = 5
	ioRetryBackoff = 1e-3
)

// retryIO runs op, retrying transient failures with backoff charged to
// this rank's virtual clock.
func (r *Rank) retryIO(op func() error) error {
	backoff := ioRetryBackoff
	for attempt := 0; ; attempt++ {
		err := op()
		if err == nil || !fault.IsTransient(err) || attempt == ioRetryLimit {
			return err
		}
		r.ioRetries++
		if !r.quiet {
			r.cluster.metrics.ioRetries.Add(1)
		}
		r.tr.Instant("fault:io_retry", r.clock.Now(), obs.I("attempt", int64(attempt+1)))
		if lg := r.Logger(); lg != nil {
			lg.Warn("io.retry", "rank", r.id, "attempt", attempt+1,
				"err", err.Error(), "vt", float64(r.clock.Now()))
		}
		r.clock.Advance(vtime.Time(backoff))
		backoff *= 2
	}
}

// CollectiveWrite is the rank-side collective file write (MPI-IO style).
// Every rank in the cluster must call it once per collective operation;
// ranks with nothing to contribute pass an empty data slice (the paper's
// "null write"). Offsets across ranks must not overlap. Clocks advance
// by the modeled I/O time: all participants leave at the global
// completion time, like a collective MPI_File_write_all. Transient
// filesystem errors are retried with backoff; permanent ones surface.
func (r *Rank) CollectiveWrite(name string, off int64, data []byte) error {
	var err error
	if len(data) > 0 {
		err = r.retryIO(func() error { return r.cluster.fs.WriteAt(name, off, data) })
	}
	r.ioAccount(int64(len(data)))
	if err != nil {
		return err
	}
	return nil
}

// CollectiveRead is the rank-side collective file read. Every rank must
// participate; n may be zero. Transient filesystem errors are retried
// with backoff.
func (r *Rank) CollectiveRead(name string, off int64, n int) ([]byte, error) {
	var data []byte
	var err error
	if n > 0 {
		err = r.retryIO(func() error {
			var rerr error
			data, rerr = r.cluster.fs.ReadAt(name, off, n)
			return rerr
		})
	}
	r.ioAccount(int64(n))
	if err != nil {
		return nil, err
	}
	return data, nil
}

// IndependentWrite is the rank-side independent file write: only this
// rank participates, no collective synchronization happens, and the
// clock advances by the I/O time of a lone writer. Used for per-root
// artifacts such as merge-round checkpoints, where dragging every rank
// through an Allreduce per round would serialize the pipeline.
// Transient filesystem errors are retried with backoff.
func (r *Rank) IndependentWrite(name string, off int64, data []byte) error {
	var err error
	if len(data) > 0 {
		err = r.retryIO(func() error { return r.cluster.fs.WriteAt(name, off, data) })
	}
	n := int64(len(data))
	r.clock.Advance(r.cluster.machine.IOTime(n, n))
	return err
}

// IndependentRead is the rank-side independent file read, the
// counterpart of IndependentWrite for recovery paths where a single
// root re-reads its own checkpoint. Transient filesystem errors are
// retried with backoff.
func (r *Rank) IndependentRead(name string, off int64, n int) ([]byte, error) {
	var data []byte
	var err error
	if n > 0 {
		err = r.retryIO(func() error {
			var rerr error
			data, rerr = r.cluster.fs.ReadAt(name, off, n)
			return rerr
		})
	}
	nb := int64(n)
	r.clock.Advance(r.cluster.machine.IOTime(nb, nb))
	if err != nil {
		return nil, err
	}
	return data, nil
}

// FileSize returns the current length of a shared-filesystem file, or
// an error if it does not exist. Metadata-only: no clock charge.
func (r *Rank) FileSize(name string) (int64, error) {
	return r.cluster.fs.Size(name)
}

// RemoveFile unlinks a shared-filesystem file, returning its size and
// whether it existed. Like FileSize it is metadata-only — no clock
// charge — matching how parallel filesystems serve unlinks from the
// metadata server without touching data paths.
func (r *Rank) RemoveFile(name string) (int64, bool) {
	return r.cluster.fs.Remove(name)
}

// ioAccount advances every participant's clock for one collective I/O
// operation moving rankBytes on this rank. The total volume is combined
// with an Allreduce (which also performs the collective synchronization
// a two-phase MPI-IO operation implies).
func (r *Rank) ioAccount(rankBytes int64) {
	total := r.AllreduceFloat64(float64(rankBytes), "sum")
	myTime := r.cluster.machine.IOTime(rankBytes, int64(total))
	// All ranks complete together: the operation takes as long as the
	// slowest participant.
	finish := r.AllreduceFloat64(float64(r.Clock())+float64(myTime), "max")
	r.clock.AdvanceTo(vtimeFromFloat(finish))
}

func vtimeFromFloat(s float64) vtime.Time { return vtime.Time(s) }

// IOAccount advances every rank's clock for one collective I/O round in
// which this rank moved rankBytes. It must be called collectively; ranks
// that moved nothing pass 0 (the "null" participation of section IV-G).
func (r *Rank) IOAccount(rankBytes int64) { r.ioAccount(rankBytes) }
