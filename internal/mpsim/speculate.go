package mpsim

import (
	"parms/internal/obs"
	"parms/internal/vtime"
)

// PeekArrival reports, without receiving anything, whether a message
// matching (src, tag) is pending in this rank's mailbox, and the
// earliest virtual arrival stamp among the matches. It never blocks and
// never consumes the message.
//
// Because sends are eager, a message that was merely delayed is pending
// from the moment its sender issued it — so after RecvTimeout fails,
// PeekArrival distinguishes "in flight but late" (pending, arrival past
// the deadline) from "lost" (absent: dropped, or the sender crashed
// before sending). The answer for a message that has not been sent yet
// is a snapshot, bounded the same way RecvTimeout's real-time grace is;
// speculative recovery treats an absent message as lost, which is safe
// either way because the recompute path produces the identical subtree.
//
// PeekArrival deliberately records no flow: whether a not-yet-sent
// message shows as pending depends on host scheduling, so any record
// keyed to the peek would break the byte-identical flow-trace contract.
func (r *Rank) PeekArrival(src, tag int) (vtime.Time, bool) {
	r.checkSrc(src)
	mb := r.cluster.mailboxes[r.id]
	mb.mu.Lock()
	defer mb.mu.Unlock()
	var best vtime.Time
	found := false
	for _, m := range mb.pending {
		if (src == AnySource || m.src == src) && m.tag == tag {
			if !found || m.arrival < best {
				best = m.arrival
			}
			found = true
		}
	}
	return best, found
}

// Speculative returns a quiet twin of this rank for racing a local
// recovery against a late message. The twin shares the cluster — same
// filesystem, same cost model, same fault plan for I/O — but carries an
// independent clock copied from r, so work charged to the twin measures
// the cost of the speculation without advancing the real rank. The twin
// does not trace, log, export metrics, or crash at fault-plan
// checkpoints: a speculation that loses the race must leave no mark on
// the run beyond the I/O it physically performed.
//
// The twin must stay local: it has no mailbox identity of its own, so
// sending or receiving through it would act as the parent rank.
func (r *Rank) Speculative() *Rank {
	twin := &Rank{
		id:      r.id,
		cluster: r.cluster,
		quiet:   true,
	}
	twin.clock.AdvanceTo(r.clock.Now())
	return twin
}

// Adopt commits a speculative twin's outcome onto the real rank: the
// clock advances to the twin's (the speculation was on this rank's
// critical path after all) and the twin's I/O retry tally is folded in.
// Call it only for the winning twin; losing twins are simply dropped,
// which is the "cancel" of the speculation protocol. The adoption is
// recorded as a synthetic self-flow spanning the clock jump, so the
// flow trace shows where recomputed data replaced a late message.
func (r *Rank) Adopt(twin *Rank) {
	pre := r.clock.Now()
	r.clock.AdvanceTo(twin.clock.Now())
	r.ioRetries += twin.ioRetries
	if !r.quiet {
		r.cluster.flows.Emit(r.id, r.id, r.id, 0, 0,
			obs.FlowSpeculativeAdopt, pre, r.clock.Now())
	}
}

// SpeculationCost returns how far the twin's clock has run ahead of the
// real rank — the modeled price of the speculative work so far.
func (r *Rank) SpeculationCost(twin *Rank) vtime.Time {
	d := twin.clock.Now() - r.clock.Now()
	if d < 0 {
		return 0
	}
	return d
}
