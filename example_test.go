package parms_test

import (
	"fmt"
	"log"

	"parms"
)

// ExampleCompute runs the two-stage parallel algorithm on a small
// synthetic field and prints the critical point census of the fully
// merged complex.
func ExampleCompute() {
	vol := parms.Sinusoid(17, 2)
	res, err := parms.Compute(vol, parms.Options{
		Procs:       8,
		FullMerge:   true,
		Persistence: 0.15,
	})
	if err != nil {
		log.Fatal(err)
	}
	ms := res.Merged()
	nodes, _ := ms.AliveCounts()
	fmt.Printf("minima=%d saddles=%d+%d maxima=%d euler=%d output_blocks=%d\n",
		nodes[0], nodes[1], nodes[2], nodes[3], ms.EulerCharacteristic(), res.OutputBlocks)
	// Output:
	// minima=4 saddles=3+4 maxima=4 euler=1 output_blocks=1
}

// ExampleComputeSerial computes the serial baseline the parallel
// algorithm is validated against.
func ExampleComputeSerial() {
	ms := parms.ComputeSerial(parms.Sinusoid(17, 2), 0.15)
	nodes, _ := ms.AliveCounts()
	fmt.Printf("serial census: %v\n", nodes)
	// Output:
	// serial census: [4 3 4 4]
}

// ExampleExtract runs a Figure 1 style interactive query: the
// ridge-line subgraph above a function-value threshold.
func ExampleExtract() {
	ms := parms.ComputeSerial(parms.Sinusoid(17, 2), 0.15)
	sg := parms.Extract(ms, parms.FilterAnd(
		parms.ByEndpointIndices(2, 3),
		parms.ByMinValue(0),
	))
	fmt.Printf("ridge arcs=%d components=%d cycles=%d\n", sg.Arcs, sg.Components, sg.Cycles)
	// Output:
	// ridge arcs=4 components=4 cycles=0
}

// ExampleFullMergeRadices shows the paper's recommended merge schedules.
func ExampleFullMergeRadices() {
	fmt.Println(parms.FullMergeRadices(256))
	fmt.Println(parms.FullMergeRadices(2048))
	fmt.Println(parms.FullMergeRadices(8192))
	// Output:
	// [4 8 8]
	// [4 8 8 8]
	// [2 8 8 8 8]
}
