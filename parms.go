// Package parms (PARallel Morse-Smale) computes the 1-skeleton of the
// Morse-Smale complex of a 3D scalar field with the two-stage parallel
// algorithm of Gyulassy, Pascucci, Peterka and Ross, "The Parallel
// Computation of Morse-Smale Complexes" (IPDPS 2012): per-block discrete
// gradient and MS complex computation with boundary-restricted pairing,
// persistence simplification, and configurable rounds of radix-2/4/8
// merging that glue block complexes into global ones.
//
// The original system ran on MPI over the IBM Blue Gene/P. This library
// executes the same algorithm on a virtual distributed-memory cluster:
// one goroutine per rank, message passing with MPI semantics, and
// per-rank virtual clocks driven by a calibrated LogGP-style cost model
// of the machine (see DESIGN.md). Results — the complexes themselves —
// are real; stage timings are modeled so the paper's scaling studies can
// be regenerated on a workstation.
//
// Quick start:
//
//	vol := parms.Sinusoid(128, 8)
//	res, err := parms.Compute(vol, parms.Options{Procs: 64, FullMerge: true, Persistence: 0.01})
//	...
//	ms := res.Merged()
//	fmt.Println(ms.AliveCounts())
package parms

import (
	"fmt"
	"log/slog"
	"sort"
	"time"

	"parms/internal/analysis"
	"parms/internal/fault"
	"parms/internal/grid"
	"parms/internal/merge"
	"parms/internal/mpsim"
	"parms/internal/mscomplex"
	"parms/internal/obs"
	"parms/internal/pipeline"
	"parms/internal/serial"
	"parms/internal/synth"
	"parms/internal/vtime"
)

// Core data types, aliased from the implementation packages so that all
// functionality is reachable through this one import.
type (
	// Volume is a scalar field sampled at the vertices of a regular 3D
	// grid.
	Volume = grid.Volume
	// Dims is a grid extent in vertices.
	Dims = grid.Dims
	// DType identifies on-disk sample formats.
	DType = grid.DType
	// Complex is the 1-skeleton of a Morse-Smale complex.
	Complex = mscomplex.Complex
	// Node is a critical point of the complex.
	Node = mscomplex.Node
	// Arc is a V-path connecting two critical points.
	Arc = mscomplex.Arc
	// Machine is a cost-model profile of the simulated system.
	Machine = vtime.Machine
	// StageTimes decomposes a run into read/compute/merge/write.
	StageTimes = pipeline.StageTimes
	// RoundStats reports one merge round.
	RoundStats = merge.RoundStats
	// Subgraph summarizes an extracted feature subgraph.
	Subgraph = analysis.Subgraph
	// ArcFilter selects arcs during feature extraction.
	ArcFilter = analysis.ArcFilter
	// FaultPlan is a seeded, deterministic fault-injection schedule:
	// rank crashes at pipeline stages, dropped/duplicated/delayed/
	// corrupted point-to-point messages, and transient or permanent
	// filesystem failures.
	FaultPlan = fault.Plan
	// FaultReport tallies the fault events a run observed and survived.
	FaultReport = fault.Report
	// Tracer is the per-rank virtual-time span trace of an observed
	// run; export it with WriteChromeTrace (Perfetto) or summarize it
	// with StageStats.
	Tracer = obs.Tracer
	// Metrics is the metrics registry of an observed run; export it
	// with WritePrometheus.
	Metrics = obs.Registry
	// StageStat summarizes one span name's per-rank durations
	// (p50/p95/max and the max/mean imbalance ratio).
	StageStat = obs.StageStat
)

// WriteStageStats renders a stage summary table (see Tracer.StageStats).
var WriteStageStats = obs.WriteStageStats

// StageSpanNames are the top-level span names that tile each rank's
// timeline in a traced run, in timeline order.
var StageSpanNames = pipeline.StageSpanNames

// NewFaultPlan creates an empty fault plan; all injection draws are
// derived from the seed, so equal plans reproduce equal runs.
func NewFaultPlan(seed int64) *FaultPlan { return fault.NewPlan(seed) }

// Sample formats supported by the raw-volume reader (section IV-B).
const (
	U8  = grid.U8
	F32 = grid.F32
	F64 = grid.F64
)

// NewVolume allocates a zero-filled volume.
func NewVolume(dims Dims) *Volume { return grid.NewVolume(dims) }

// Synthetic and proxy datasets (see DESIGN.md for the substitutions).
var (
	// Sinusoid is the paper's synthetic size/complexity study field.
	Sinusoid = synth.Sinusoid
	// SinusoidDims is Sinusoid on a non-cubic grid.
	SinusoidDims = synth.SinusoidDims
	// Hydrogen is the Figure 4 stability-study proxy.
	Hydrogen = synth.Hydrogen
	// Jet is the combustion mixture-fraction proxy (section VI-D1).
	Jet = synth.Jet
	// RayleighTaylor is the mixing-fluids density proxy (section VI-D2).
	RayleighTaylor = synth.RayleighTaylor
	// PorousSolid is the Figure 1 filament-extraction workload.
	PorousSolid = synth.PorousSolid
	// Ramp is a monotone field with trivial topology.
	Ramp = synth.Ramp
	// RandomField is seeded uniform noise, the worst case for feature
	// counts.
	RandomField = synth.Random
)

// BlueGeneP is the default machine profile, shaped after the paper's
// test system.
func BlueGeneP() *Machine { return vtime.BlueGeneP() }

// Options configures a parallel computation.
type Options struct {
	// Procs is the number of ranks of the virtual cluster (default 1).
	Procs int
	// Blocks is the number of decomposition blocks (default: one per
	// rank, the configuration used in all the paper's experiments).
	Blocks int
	// Radices is the merge schedule. Leave nil and set FullMerge for
	// the paper's recommended radix-8-first full merge, or set explicit
	// radices (each 2, 4 or 8) for a partial merge.
	Radices []int
	// FullMerge selects merge.Full(Blocks) when Radices is nil.
	FullMerge bool
	// Persistence is the simplification threshold as a fraction of the
	// data range (0.01 = the paper's "1% persistence simplification").
	Persistence float64
	// Machine overrides the cost profile (default BlueGeneP).
	Machine *Machine
	// MaxParallel bounds how many rank goroutines execute othe host
	// concurrently (0 = unbounded). Virtual times are unaffected.
	MaxParallel int
	// Measured switches compute timing from the cost model to real
	// wall-clock time.
	Measured bool
	// Workers is the intra-rank worker pool width for the compute-stage
	// kernels (batch gradient passes, path-compression sweeps, per-
	// saddle tracing): 1 = sequential, N > 1 = N workers with the
	// parallel cost model, 0 (auto) = an even share of the host's cores
	// with the sequential cost model. Output is byte-identical for
	// every width.
	Workers int
	// Faults injects the given fault plan into the run. The pipeline
	// then runs fault-tolerantly: merge receives are bounded, corrupted
	// payloads are rejected by checksum, and lost blocks are recovered
	// by deterministic recomputation (see Result.FaultReport).
	Faults *FaultPlan
	// MergeTimeout overrides the per-member merge receive budget in
	// virtual seconds (default 1s when Faults is set). Setting it
	// without Faults also enables the fault-tolerant merge path.
	MergeTimeout float64
	// RecvGrace bounds the real (wall-clock) time a timed-out receive
	// may wait for a message that never arrives (default 2s).
	RecvGrace time.Duration
	// CheckpointEvery, when >= 1, persists each merge-group root's
	// post-round complex to the simulated filesystem every
	// CheckpointEvery rounds (checksummed PCSFM2 frames), and fault
	// recovery then restores lost subtrees from the newest valid
	// checkpoint — a read — before falling back to recomputation (see
	// FaultReport.CheckpointRestores vs Recomputes). 0 disables
	// checkpointing.
	CheckpointEvery int
	// CheckpointDir is the checkpoint directory on the simulated
	// filesystem (default "ckpt").
	CheckpointDir string
	// CheckpointGC deletes checkpoints superseded by newer rounds as
	// soon as the newer round is safely on disk, bounding checkpoint
	// storage (see FaultReport.CheckpointsGCed).
	CheckpointGC bool
	// Migrate moves a crashed rank's blocks to healthy ranks chosen by
	// load through the run's block ownership table; the new owners
	// restore the blocks from the dead rank's checkpoints or recompute
	// them (see FaultReport.Migrations). Off by default — the per-round
	// failure exchange costs one collective, so fault-free modeled
	// times are unchanged unless asked for.
	Migrate bool
	// Speculate races a local recompute of a late merge subtree against
	// its still-pending payload when a receive times out, committing
	// whichever completes earlier on the virtual clock (see
	// FaultReport.SpeculationPayloadWins / SpeculationRecomputeWins).
	Speculate bool
	// AvoidRanks seeds the ownership table's initial block rotation
	// away from the listed ranks (typically a prior run's
	// Recommendation.AvoidRanks from msinsight), so known stragglers
	// start the run owning no blocks.
	AvoidRanks []int
	// Trace enables per-rank span tracing and the metrics registry.
	// The run then populates Result.Trace and Result.Metrics; export
	// them with WriteChromeTrace / WritePrometheus. When false (the
	// default) every instrumentation hook is a nil no-op.
	Trace bool
	// FlowSample tunes the per-message flow recorder of a traced run:
	// 0 or 1 records every message (the default), n > 1 keeps every
	// n-th per emitter, and any negative value counts flows without
	// storing records (see obs.FlowRecorder.SetSample). Ignored when
	// Trace is off.
	FlowSample int
	// Log, when non-nil, receives structured run events (fault
	// instants, checkpoint writes, recovery decisions) with a "vt"
	// attribute tying each line to the virtual timeline; build one
	// with obs.NewJSONLogger. Setting Log implies Trace.
	Log *slog.Logger
}

// Result is the outcome of a parallel computation.
type Result struct {
	// Times holds the modeled stage durations (seconds).
	Times StageTimes
	// Rounds holds per-merge-round statistics.
	Rounds []RoundStats
	// Procs and Blocks echo the configuration.
	Procs, Blocks int
	// OutputBlocks is the number of complex blocks after merging.
	OutputBlocks int
	// OutputBytes is the size of the written output file.
	OutputBytes int64
	// Nodes counts alive critical points by Morse index across output
	// blocks; Arcs counts alive arcs.
	Nodes [4]int
	Arcs  int
	// BytesSent totals point-to-point communication payload.
	BytesSent int64
	// Complexes holds the surviving complexes keyed by root block id.
	Complexes map[int]*Complex
	// FaultReport tallies the fault events observed across ranks
	// (zero-valued in a fault-free run).
	FaultReport FaultReport
	// Trace holds the per-rank span trace and Metrics the metrics
	// registry of the run; both are nil unless Options.Trace was set.
	Trace   *Tracer
	Metrics *Metrics
}

// Merged returns the single output complex of a fully merged run, or
// the complex of the lowest surviving block otherwise.
func (r *Result) Merged() *Complex {
	best := -1
	for id := range r.Complexes {
		if best < 0 || id < best {
			best = id
		}
	}
	if best < 0 {
		return nil
	}
	return r.Complexes[best]
}

// TotalNodes returns the total critical point count across output
// blocks.
func (r *Result) TotalNodes() int {
	return r.Nodes[0] + r.Nodes[1] + r.Nodes[2] + r.Nodes[3]
}

// newObserver builds the run's observability sink: a tracer+registry
// when Options.Trace is set, with the structured event logger attached
// when Options.Log is set (which implies tracing — log lines carry
// virtual timestamps that only mean something next to the spans).
func newObserver(opt Options) *obs.Observer {
	if !opt.Trace && opt.Log == nil {
		return nil
	}
	ob := obs.New(opt.Procs)
	ob.Log = opt.Log
	if opt.FlowSample != 0 {
		ob.FlowRecorder().SetSample(opt.FlowSample)
	}
	return ob
}

// Compute runs the two-stage parallel algorithm on a volume.
func Compute(vol *Volume, opt Options) (*Result, error) {
	if opt.Procs <= 0 {
		opt.Procs = 1
	}
	blocks := opt.Blocks
	if blocks <= 0 {
		blocks = opt.Procs
	}
	radices := opt.Radices
	if radices == nil && opt.FullMerge {
		radices = merge.Full(blocks).Radices
	}
	ob := newObserver(opt)
	cluster, err := mpsim.New(mpsim.Config{
		Procs:       opt.Procs,
		Machine:     opt.Machine,
		MaxParallel: opt.MaxParallel,
		Faults:      opt.Faults,
		RecvGrace:   opt.RecvGrace,
		Obs:         ob,
	})
	if err != nil {
		return nil, err
	}
	cluster.FS().Put("volume.raw", vol.Bytes())
	lo, hi := vol.Range()
	res, err := pipeline.Run(cluster, pipeline.Params{
		File:            "volume.raw",
		Dims:            vol.Dims,
		DType:           vol.DType,
		Blocks:          blocks,
		Radices:         radices,
		Persistence:     float32(opt.Persistence * float64(hi-lo)),
		KeepComplexes:   true,
		Measured:        opt.Measured,
		Workers:         opt.Workers,
		MergeTimeout:    opt.MergeTimeout,
		CheckpointEvery: opt.CheckpointEvery,
		CheckpointDir:   opt.CheckpointDir,
		CheckpointGC:    opt.CheckpointGC,
		Migrate:         opt.Migrate,
		Speculate:       opt.Speculate,
		AvoidRanks:      opt.AvoidRanks,
	})
	if err != nil {
		return nil, err
	}
	out := &Result{
		Times:        res.Times,
		Rounds:       res.Rounds,
		Procs:        res.Procs,
		Blocks:       res.Blocks,
		OutputBlocks: res.OutputBlocks,
		OutputBytes:  res.OutputBytes,
		Nodes:        res.Nodes,
		Arcs:         res.Arcs,
		BytesSent:    res.BytesSent,
		Complexes:    res.Complexes,
		FaultReport:  res.FaultReport,
		Trace:        res.Trace,
		Metrics:      res.Metrics,
	}
	return out, nil
}

// ComputeInSitu runs the two-stage algorithm without a read stage: each
// block's samples are supplied directly by source, as when the analysis
// is embedded in the simulation that produced the data (the paper's
// in-situ plan, section VII-B). source receives the closed vertex box
// [lo, hi] of a block (including shared layers) and must return a volume
// of exactly that extent. rangeLo and rangeHi give the global value
// range the relative persistence threshold is scaled by.
func ComputeInSitu(dims Dims, source func(lo, hi [3]int) *Volume,
	rangeLo, rangeHi float32, opt Options) (*Result, error) {
	if opt.Procs <= 0 {
		opt.Procs = 1
	}
	blocks := opt.Blocks
	if blocks <= 0 {
		blocks = opt.Procs
	}
	radices := opt.Radices
	if radices == nil && opt.FullMerge {
		radices = merge.Full(blocks).Radices
	}
	ob := newObserver(opt)
	cluster, err := mpsim.New(mpsim.Config{
		Procs:       opt.Procs,
		Machine:     opt.Machine,
		MaxParallel: opt.MaxParallel,
		Faults:      opt.Faults,
		RecvGrace:   opt.RecvGrace,
		Obs:         ob,
	})
	if err != nil {
		return nil, err
	}
	res, err := pipeline.Run(cluster, pipeline.Params{
		File:            "in-situ",
		Dims:            dims,
		Blocks:          blocks,
		Radices:         radices,
		Persistence:     float32(opt.Persistence * float64(rangeHi-rangeLo)),
		KeepComplexes:   true,
		Measured:        opt.Measured,
		Workers:         opt.Workers,
		MergeTimeout:    opt.MergeTimeout,
		CheckpointEvery: opt.CheckpointEvery,
		CheckpointDir:   opt.CheckpointDir,
		CheckpointGC:    opt.CheckpointGC,
		Migrate:         opt.Migrate,
		Speculate:       opt.Speculate,
		AvoidRanks:      opt.AvoidRanks,
		Source: func(b grid.Block) (*Volume, error) {
			return source(b.Lo, b.Hi), nil
		},
	})
	if err != nil {
		return nil, err
	}
	return &Result{
		Times:        res.Times,
		Rounds:       res.Rounds,
		Procs:        res.Procs,
		Blocks:       res.Blocks,
		OutputBlocks: res.OutputBlocks,
		OutputBytes:  res.OutputBytes,
		Nodes:        res.Nodes,
		Arcs:         res.Arcs,
		BytesSent:    res.BytesSent,
		Complexes:    res.Complexes,
		FaultReport:  res.FaultReport,
		Trace:        res.Trace,
		Metrics:      res.Metrics,
	}, nil
}

// ComputeSerial computes the complex of a whole volume in one block with
// no boundary restrictions — the paper's serial baseline. persistence is
// relative to the data range, as in Options.
func ComputeSerial(vol *Volume, persistence float64) *Complex {
	lo, hi := vol.Range()
	return serial.Compute(vol, float32(persistence*float64(hi-lo)))
}

// Simplify applies persistence simplification to a complex; threshold is
// relative to the given value range.
func Simplify(c *Complex, threshold float64, lo, hi float32) {
	c.Simplify(mscomplex.SimplifyOptions{Threshold: float32(threshold * float64(hi-lo))})
}

// Feature extraction queries (Figure 1).
var (
	// Extract summarizes the subgraph selected by a filter.
	Extract = analysis.Extract
	// SelectArcs lists the arcs passing a filter.
	SelectArcs = analysis.SelectArcs
	// ByEndpointIndices selects arcs by Morse index pair, e.g. (2, 3)
	// for ridge lines.
	ByEndpointIndices = analysis.ByEndpointIndices
	// ByMinValue selects arcs above a function-value threshold.
	ByMinValue = analysis.ByMinValue
	// FilterAnd combines filters conjunctively.
	FilterAnd = analysis.And
	// CountNodes counts alive nodes by index above a value threshold.
	CountNodes = analysis.CountNodes
	// PersistenceCurve reports surviving node count vs threshold.
	PersistenceCurve = analysis.PersistenceCurve
	// ArcLengths summarizes geometric arc lengths.
	ArcLengths = analysis.ArcLengths
)

// PersistencePair is a finite birth-death pair of a persistence diagram.
type PersistencePair = analysis.PersistencePair

// Diagram extracts the finite persistence pairs recorded by a complex's
// simplification history.
func Diagram(c *Complex, dims Dims) []PersistencePair {
	return analysis.PersistenceDiagram(c, grid.NewAddrSpace(dims))
}

// FullMergeRadices returns the paper's recommended schedule for a
// complete merge of nblocks: the highest radices possible, smaller
// radices in earlier rounds (section VI-C2).
func FullMergeRadices(nblocks int) []int { return merge.Full(nblocks).Radices }

// PartialMergeRadices returns rounds radix-8 rounds (fewer if nblocks is
// small), the paper's partial merge configuration.
func PartialMergeRadices(nblocks, rounds int) []int {
	return merge.Partial(nblocks, rounds).Radices
}

// Efficiency computes strong-scaling efficiency the way the paper does:
// the factor decrease in time divided by the factor increase in process
// count.
func Efficiency(baseTime float64, baseProcs int, t float64, procs int) float64 {
	return vtime.Efficiency(vtime.Time(baseTime), baseProcs, vtime.Time(t), procs)
}

// Describe renders a one-line summary of a result.
func (r *Result) Describe() string {
	ids := make([]int, 0, len(r.Complexes))
	for id := range r.Complexes {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return fmt.Sprintf(
		"procs=%d blocks=%d out=%d nodes=%v arcs=%d bytes=%d read=%.3fs compute=%.3fs merge=%.3fs write=%.3fs total=%.3fs",
		r.Procs, r.Blocks, r.OutputBlocks, r.Nodes, r.Arcs, r.OutputBytes,
		r.Times.Read, r.Times.Compute, r.Times.Merge, r.Times.Write, r.Times.Total)
}
